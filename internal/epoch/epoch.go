// Package epoch implements versioned base tables with copy-on-write
// epochs — the HTAP seam that lets one system score, ingest feature
// updates, and retrain concurrently over a normalized feature store.
//
// A Store freezes the join structure (the indicator matrices) of a
// core.NormalizedMatrix and versions the *contents* of its base tables:
// the entity table S and each attribute table R_t. Writers stage row
// upserts keyed by tuple id into a per-table delta; Commit publishes all
// staged upserts as one new immutable epoch, atomically. Epochs are
// copy-on-write at the granularity of a table overlay: a commit copies
// only the overlay maps of the tables it touched, so unchanged tables
// share their overlay with the previous epoch and the base matrices are
// never copied at all.
//
// Readers never block writers and vice versa:
//
//   - The scoring path subscribes to commits (Subscribe) and patches its
//     cached partial products per changed row — see serve.EpochScorer.
//   - The training path pins an epoch (Pin) and reads a consistent
//     snapshot — in memory via Snapshot.NormalizedMatrix, or streamed
//     out-of-core via Snapshot.BuildChunked — that later commits can
//     never perturb: results are bitwise independent of concurrent
//     writes.
//
// Epoch lifetime is refcounted: the store keeps the current epoch live,
// every Snapshot pins the epoch it reads, and an epoch superseded by a
// commit is reclaimed as soon as its last pin is released. LiveEpochs
// exposes the accounting (baseline: 1, the current epoch), so tests can
// assert that retired epochs do not accumulate.
//
// The design follows the consistent-snapshot survey (arXiv:1810.04915)
// and Polynesia's transactional/analytical HTAP split (arXiv:2103.00798):
// one write path, many immutable read views, no cross-interference.
package epoch

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/la"
)

// Version numbers epochs, starting at 1 for the base tables a Store is
// created over and incrementing by 1 per non-empty Commit.
type Version uint64

// Errors reported by the versioned store.
var (
	// ErrRowRange is returned when an upsert addresses a tuple id outside
	// the target table.
	ErrRowRange = errors.New("epoch: row id out of range")
	// ErrWidth is returned when an upsert's value vector does not match
	// the target table's column count.
	ErrWidth = errors.New("epoch: upsert width does not match table")
	// ErrTableRange is returned when an upsert addresses an attribute
	// table index outside [0, NumTables()).
	ErrTableRange = errors.New("epoch: attribute table index out of range")
	// ErrNoEntity is returned by UpsertEntity when the store's schema has
	// no entity feature table (dS = 0).
	ErrNoEntity = errors.New("epoch: store has no entity feature table")
)

// Store is a versioned normalized feature store. The join structure —
// row counts, indicator matrices, table widths — is fixed at
// construction; the contents of the entity table and the attribute
// tables evolve through epochs. Upsert*, Commit, Pin, Subscribe, and all
// accessors are safe for concurrent use; upserts and commits are
// serialized internally (one logical writer), while any number of
// readers pin and read snapshots concurrently.
type Store struct {
	is    *la.Indicator
	ks    []*la.Indicator
	nRows int
	// bases holds the frozen epoch-1 tables: slot 0 is S (nil when the
	// schema has no entity features), slot 1+t is R_t.
	bases []la.Mat

	// writeMu serializes the write path: Upsert*, Commit, and the
	// listener callbacks Commit makes. Listeners therefore observe
	// commits exactly once each, in version order.
	writeMu   sync.Mutex
	pending   []map[int32][]float64 // staged upserts per table slot
	listeners []func(*Commit)

	// mu guards the epoch chain bookkeeping (current epoch, refcounts,
	// live count); it is held only for pointer swaps and counter updates,
	// never across data work.
	mu   sync.Mutex
	cur  *epochState
	live int
}

// epochState is one immutable published epoch: per-table-slot overlays
// over the store's base matrices. A nil overlay means the slot is
// identical to its base; unchanged slots share their overlay map with
// the previous epoch (copy-on-write).
type epochState struct {
	version  Version
	overlays []map[int32][]float64
	refs     int // pins (snapshots) + 1 while current; guarded by Store.mu
}

// NewStore adopts nm's base tables as epoch 1 and freezes its join
// structure. nm must be untransposed. The base matrices are referenced,
// not copied — the caller must not mutate them after handing them over
// (all subsequent mutation goes through Upsert/Commit).
func NewStore(nm *core.NormalizedMatrix) (*Store, error) {
	if nm == nil {
		return nil, errors.New("epoch: nil normalized matrix")
	}
	if nm.IsTransposed() {
		return nil, errors.New("epoch: store requires an untransposed normalized matrix")
	}
	q := nm.NumTables()
	st := &Store{
		is:    nm.IS(),
		ks:    nm.Ks(),
		nRows: nm.Rows(),
		bases: make([]la.Mat, 1+q),
	}
	st.bases[0] = nm.S()
	copy(st.bases[1:], nm.Rs())
	st.pending = make([]map[int32][]float64, 1+q)
	st.cur = &epochState{version: 1, overlays: make([]map[int32][]float64, 1+q), refs: 1}
	st.live = 1
	return st, nil
}

// Rows reports the logical row count of the join output T (fixed across
// epochs: upserts change row contents, never the join structure).
func (st *Store) Rows() int { return st.nRows }

// Cols reports the logical feature width dS + Σ dR_t.
func (st *Store) Cols() int {
	d := st.EntityCols()
	for t := range st.ks {
		d += st.bases[1+t].Cols()
	}
	return d
}

// NumTables reports the number of attribute tables q.
func (st *Store) NumTables() int { return len(st.ks) }

// EntityCols reports the entity feature width dS (0 when the schema has
// no entity feature table).
func (st *Store) EntityCols() int {
	if st.bases[0] == nil {
		return 0
	}
	return st.bases[0].Cols()
}

// EntityRows reports the entity table's tuple count (0 when absent).
func (st *Store) EntityRows() int {
	if st.bases[0] == nil {
		return 0
	}
	return st.bases[0].Rows()
}

// AttrRows reports attribute table t's tuple count nR_t.
func (st *Store) AttrRows(t int) int { return st.bases[1+t].Rows() }

// AttrCols reports attribute table t's feature width dR_t.
func (st *Store) AttrCols(t int) int { return st.bases[1+t].Cols() }

// IS returns the entity-side row selector (nil for PK-FK/star schemas).
// The indicator is shared and immutable.
func (st *Store) IS() *la.Indicator { return st.is }

// Ks returns the per-attribute-table indicator matrices, shared and
// immutable: epochs version table contents, not join structure.
func (st *Store) Ks() []*la.Indicator { return st.ks }

// Version reports the most recently committed epoch. It may advance
// immediately after returning; pin a Snapshot for a stable view.
func (st *Store) Version() Version {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.cur.version
}

// LiveEpochs reports how many epochs are currently retained: the current
// epoch plus every superseded epoch still pinned by a snapshot. The
// baseline — no outstanding pins — is 1.
func (st *Store) LiveEpochs() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.live
}

// PatchedRows reports how many rows the current epoch's overlays patch
// over the base tables (summed across tables) — the copy-on-write
// footprint serving pays per snapshot, and a rough measure of when
// re-basing the store would pay off.
func (st *Store) PatchedRows() int {
	st.mu.Lock()
	cur := st.cur
	st.mu.Unlock()
	n := 0
	for _, ov := range cur.overlays {
		n += len(ov)
	}
	return n
}

// Pending reports the number of staged (uncommitted) row upserts.
func (st *Store) Pending() int {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	n := 0
	for _, p := range st.pending {
		n += len(p)
	}
	return n
}

// UpsertEntity stages new feature values for entity tuple row. The
// values are copied. Staged upserts are invisible to readers until
// Commit; a second upsert to the same row before Commit overwrites the
// first (last-write-wins within an epoch). Safe to call concurrently
// with scoring, pinned snapshots, and Commit.
func (st *Store) UpsertEntity(row int, vals []float64) error {
	if st.bases[0] == nil {
		return ErrNoEntity
	}
	return st.upsert(0, st.bases[0], row, vals)
}

// UpsertAttr stages new feature values for tuple row of attribute table
// t (0-based). Semantics match UpsertEntity.
func (st *Store) UpsertAttr(t, row int, vals []float64) error {
	if t < 0 || t >= len(st.ks) {
		return fmt.Errorf("%w: table %d not in [0,%d)", ErrTableRange, t, len(st.ks))
	}
	return st.upsert(1+t, st.bases[1+t], row, vals)
}

func (st *Store) upsert(slot int, base la.Mat, row int, vals []float64) error {
	if row < 0 || row >= base.Rows() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrRowRange, row, base.Rows())
	}
	if len(vals) != base.Cols() {
		return fmt.Errorf("%w: got %d values, table has %d columns", ErrWidth, len(vals), base.Cols())
	}
	v := make([]float64, len(vals))
	copy(v, vals)
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	if st.pending[slot] == nil {
		st.pending[slot] = make(map[int32][]float64)
	}
	st.pending[slot][int32(row)] = v
	return nil
}

// TableDelta lists one table's changed rows in a commit, with their
// values before and after. Rows are ascending; Old[i] and New[i] are the
// full feature vectors of tuple Rows[i] in the previous and the new
// epoch. Slices are immutable once published — consumers (and the
// incremental partial-product patch in serve) read them without copying.
type TableDelta struct {
	Rows []int32
	Old  [][]float64
	New  [][]float64
}

// Commit describes one published epoch: its version and the per-table
// row deltas. Entity is nil when no entity rows changed; Attrs has one
// entry per attribute table, nil where that table is unchanged.
type Commit struct {
	Version Version
	Entity  *TableDelta
	Attrs   []*TableDelta
}

// RowsChanged reports the total number of rows this commit changed.
func (c *Commit) RowsChanged() int {
	n := 0
	if c.Entity != nil {
		n += len(c.Entity.Rows)
	}
	for _, d := range c.Attrs {
		if d != nil {
			n += len(d.Rows)
		}
	}
	return n
}

// Commit atomically publishes every staged upsert as one new immutable
// epoch and reports the delta. Tables without staged upserts share their
// overlay with the previous epoch (no copy); changed tables get a fresh
// overlay map extended copy-on-write. With nothing staged, Commit is a
// no-op returning the current version and an empty delta.
//
// Readers are never blocked: snapshots pinned before the commit keep
// reading the old epoch, reads after it see the new one, and nothing in
// between is observable. Subscribed listeners run synchronously on the
// committing goroutine, under the write lock, before Commit returns —
// so when Commit returns, a subscribed scorer already serves the new
// epoch, and Commit's latency includes the incremental patch (the
// number morpheus-bench -exp serve-mutate reports).
func (st *Store) Commit() (*Commit, error) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()

	st.mu.Lock()
	cur := st.cur
	st.mu.Unlock()

	staged := 0
	for _, p := range st.pending {
		staged += len(p)
	}
	c := &Commit{Version: cur.version, Attrs: make([]*TableDelta, len(st.ks))}
	if staged == 0 {
		return c, nil
	}

	overlays := make([]map[int32][]float64, len(st.bases))
	for slot, p := range st.pending {
		if len(p) == 0 {
			overlays[slot] = cur.overlays[slot]
			continue
		}
		ov := make(map[int32][]float64, len(cur.overlays[slot])+len(p))
		for r, v := range cur.overlays[slot] {
			ov[r] = v
		}
		d := &TableDelta{
			Rows: make([]int32, 0, len(p)),
			Old:  make([][]float64, 0, len(p)),
			New:  make([][]float64, 0, len(p)),
		}
		for r := range p {
			d.Rows = append(d.Rows, r)
		}
		sort.Slice(d.Rows, func(i, j int) bool { return d.Rows[i] < d.Rows[j] })
		for _, r := range d.Rows {
			old := cur.overlays[slot][r]
			if old == nil {
				old = baseRow(st.bases[slot], int(r))
			}
			d.Old = append(d.Old, old)
			d.New = append(d.New, p[r])
			ov[r] = p[r]
		}
		overlays[slot] = ov
		if slot == 0 {
			c.Entity = d
		} else {
			c.Attrs[slot-1] = d
		}
		st.pending[slot] = nil
	}

	ep := &epochState{version: cur.version + 1, overlays: overlays, refs: 1}
	c.Version = ep.version
	st.mu.Lock()
	st.cur = ep
	st.live++
	cur.refs--
	if cur.refs == 0 {
		st.live--
	}
	st.mu.Unlock()

	for _, fn := range st.listeners {
		fn(c)
	}
	return c, nil
}

// Subscribe registers fn to be called for every subsequent commit and
// returns a pinned snapshot of the epoch current at registration. The
// two are atomic with respect to commits: fn observes exactly the
// commits with versions greater than the snapshot's, each once, in
// order. fn runs on the committing goroutine under the write lock; it
// must not call Upsert*, Commit, or Subscribe (deadlock), but may Pin.
// Release the returned snapshot when done with it.
func (st *Store) Subscribe(fn func(*Commit)) *Snapshot {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	st.listeners = append(st.listeners, fn)
	return st.Pin()
}

// Pin returns a snapshot of the current epoch, holding it live until
// Release. Snapshots are immutable, consistent across all tables (one
// epoch), and safe for concurrent use.
func (st *Store) Pin() *Snapshot {
	st.mu.Lock()
	ep := st.cur
	ep.refs++
	st.mu.Unlock()
	s := &Snapshot{store: st, ep: ep, views: make([]*viewMat, len(st.bases))}
	for slot, base := range st.bases {
		if base != nil {
			s.views[slot] = &viewMat{base: base, overlay: ep.overlays[slot]}
		}
	}
	return s
}

// release drops one pin on ep, reclaiming it if it is no longer current
// and nothing else holds it.
func (st *Store) release(ep *epochState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ep.refs--
	if ep.refs == 0 {
		st.live--
	}
}

// baseRow materializes one row of a base matrix as a dense vector, with
// fast paths for the concrete dense/CSR table types.
func baseRow(m la.Mat, i int) []float64 {
	out := make([]float64, m.Cols())
	readBaseRow(m, i, out)
	return out
}

// readBaseRow copies row i of m into dst (len(dst) == m.Cols()).
func readBaseRow(m la.Mat, i int, dst []float64) {
	switch b := m.(type) {
	case *la.Dense:
		copy(dst, b.Row(i))
	case *la.CSR:
		for j := range dst {
			dst[j] = 0
		}
		idx, vals := b.RowNNZ(i)
		for k, j := range idx {
			dst[j] = vals[k]
		}
	default:
		for j := range dst {
			dst[j] = m.At(i, j)
		}
	}
}
