package epoch

import (
	"errors"
	"sync"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/la"
)

// Snapshot is a pinned, immutable view of one epoch: every table read
// through it observes the same version, no matter how many commits land
// while it is held. Snapshots are safe for concurrent use; all reads are
// served from the base tables plus the epoch's overlay, so pinning is
// O(1) and holding a snapshot costs only the overlay it retains.
// Release the snapshot when done so superseded epochs can be reclaimed.
type Snapshot struct {
	store   *Store
	ep      *epochState
	views   []*viewMat
	release sync.Once
}

// Version reports the epoch this snapshot is pinned to.
func (s *Snapshot) Version() Version { return s.ep.version }

// Rows reports the logical row count of the join output T.
func (s *Snapshot) Rows() int { return s.store.nRows }

// NumTables reports the number of attribute tables q.
func (s *Snapshot) NumTables() int { return s.store.NumTables() }

// S returns the entity feature table at this epoch (nil when the schema
// has none). The returned matrix is immutable and safe for concurrent
// use; element reads are served lazily from base + overlay.
func (s *Snapshot) S() la.Mat {
	if s.views[0] == nil {
		return nil
	}
	return s.views[0]
}

// R returns attribute table t at this epoch. Same guarantees as S.
func (s *Snapshot) R(t int) la.Mat { return s.views[1+t] }

// NormalizedMatrix assembles the snapshot into a core.NormalizedMatrix
// over the store's frozen join structure, for in-memory training or a
// fresh scorer. The result reads through the snapshot's views — build
// cost is O(1), and training on it under concurrent commits is bitwise
// identical to training on a frozen copy of the epoch.
func (s *Snapshot) NormalizedMatrix() (*core.NormalizedMatrix, error) {
	var sm la.Mat
	if s.views[0] != nil {
		sm = s.views[0]
	}
	rs := make([]la.Mat, s.store.NumTables())
	for t := range rs {
		rs[t] = s.views[1+t]
	}
	return core.New(sm, s.store.is, s.store.ks, rs)
}

// BuildChunked streams the snapshot into cs as an out-of-core
// star-schema table: the entity table is spilled row-by-row through the
// epoch view (base + overlay, never materialized whole), each
// foreign-key column is spilled chunk-aligned with it, and the attribute
// tables stay in memory as epoch views. Only PK-FK/star schemas chunk;
// M:N snapshots (IS() != nil) and schemas without an entity feature
// table return an error. The caller owns the returned table's on-disk
// chunks (Free them); the snapshot must stay pinned only while this call
// runs — training on the result afterwards needs no pin, because the
// spilled chunks and the in-memory R views are immutable.
func (s *Snapshot) BuildChunked(cs *chunk.Store, chunkRows int) (*chunk.NormalizedTable, error) {
	if s.store.is != nil {
		return nil, errors.New("epoch: chunked snapshots support PK-FK/star schemas only (no M:N row expansion)")
	}
	if s.views[0] == nil {
		return nil, errors.New("epoch: chunked snapshot requires an entity feature table")
	}
	sm, err := chunk.FromRowSource(cs, s.views[0], chunkRows)
	if err != nil {
		return nil, err
	}
	attrs := make([]chunk.AttrTable, s.store.NumTables())
	for t := range attrs {
		fk, err := chunk.BuildIntVector(cs, s.store.ks[t].Assignments(), chunkRows)
		if err != nil {
			freeAttrs(sm, attrs[:t])
			return nil, err
		}
		attrs[t] = chunk.AttrTable{FK: fk, R: s.views[1+t]}
	}
	nt, err := chunk.NewStarTable(sm, attrs)
	if err != nil {
		freeAttrs(sm, attrs)
		return nil, err
	}
	return nt, nil
}

// freeAttrs releases partially built chunked state on a failed
// BuildChunked so store accounting returns to baseline.
func freeAttrs(sm *chunk.Matrix, attrs []chunk.AttrTable) {
	sm.Free()
	for _, a := range attrs {
		if a.FK != nil {
			a.FK.Free()
		}
	}
}

// Release unpins the snapshot's epoch; once every pin on a superseded
// epoch is released it is reclaimed (LiveEpochs returns to 1). Release
// is idempotent; using the snapshot after Release is still safe for
// reads already started, but new reads should not rely on it.
func (s *Snapshot) Release() {
	s.release.Do(func() { s.store.release(s.ep) })
}
