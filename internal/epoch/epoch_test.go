package epoch

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/la"
)

// diffTol matches the repo-wide differential budget: patched reads must
// agree with rebuilt-from-scratch state far tighter than 1e-12.
const diffTol = 1e-12

func randDense(rng *rand.Rand, rows, cols int) *la.Dense {
	d := la.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			d.Set(i, j, rng.NormFloat64())
		}
	}
	return d
}

func randMatE(rng *rand.Rand, rows, cols int, sparse bool) la.Mat {
	d := randDense(rng, rows, cols)
	if sparse {
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.6 {
					d.Set(i, j, 0)
				}
			}
		}
		return la.CSRFromDense(d)
	}
	return d
}

func randIndicatorE(rng *rand.Rand, rows, cols int) *la.Indicator {
	assign := make([]int, rows)
	for i := range assign {
		assign[i] = rng.Intn(cols)
	}
	return la.NewIndicator(assign, cols)
}

func randRow(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// pkfkStore builds a versioned store over a random PK-FK schema.
func pkfkStore(t *testing.T, rng *rand.Rand, sparse bool) *Store {
	t.Helper()
	nS, nR := 20+rng.Intn(20), 4+rng.Intn(6)
	nm, err := core.NewPKFK(randMatE(rng, nS, 3, sparse), randIndicatorE(rng, nS, nR), randMatE(rng, nR, 4, sparse))
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(nm)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestUpsertValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := pkfkStore(t, rng, false)
	if err := st.UpsertEntity(-1, randRow(rng, st.EntityCols())); !errors.Is(err, ErrRowRange) {
		t.Fatalf("negative row: got %v", err)
	}
	if err := st.UpsertEntity(st.EntityRows(), randRow(rng, st.EntityCols())); !errors.Is(err, ErrRowRange) {
		t.Fatalf("row past end: got %v", err)
	}
	if err := st.UpsertEntity(0, randRow(rng, st.EntityCols()+1)); !errors.Is(err, ErrWidth) {
		t.Fatalf("wrong width: got %v", err)
	}
	if err := st.UpsertAttr(1, 0, randRow(rng, st.AttrCols(0))); !errors.Is(err, ErrTableRange) {
		t.Fatalf("table out of range: got %v", err)
	}
	if err := st.UpsertAttr(0, st.AttrRows(0), randRow(rng, st.AttrCols(0))); !errors.Is(err, ErrRowRange) {
		t.Fatalf("attr row past end: got %v", err)
	}

	// A schema without entity features rejects entity upserts.
	nm, err := core.NewPKFK(nil, randIndicatorE(rng, 10, 3), randDense(rng, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := NewStore(nm)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.UpsertEntity(0, []float64{}); !errors.Is(err, ErrNoEntity) {
		t.Fatalf("no-entity upsert: got %v", err)
	}
}

func TestCommitDeltasAndVersioning(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	st := pkfkStore(t, rng, false)
	base := st.Pin()
	defer base.Release()

	if st.Version() != 1 {
		t.Fatalf("fresh store at version %d, want 1", st.Version())
	}
	// Empty commit: no new epoch, no delta.
	c, err := st.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != 1 || c.RowsChanged() != 0 {
		t.Fatalf("empty commit: version %d changed %d", c.Version, c.RowsChanged())
	}

	oldE := make([]float64, st.EntityCols())
	base.S().(*viewMat).ReadRow(3, oldE)
	newE := randRow(rng, st.EntityCols())
	if err := st.UpsertEntity(3, newE); err != nil {
		t.Fatal(err)
	}
	// Last write wins within an epoch.
	newE2 := randRow(rng, st.EntityCols())
	if err := st.UpsertEntity(3, newE2); err != nil {
		t.Fatal(err)
	}
	newA := randRow(rng, st.AttrCols(0))
	if err := st.UpsertAttr(0, 1, newA); err != nil {
		t.Fatal(err)
	}
	if st.Pending() != 2 {
		t.Fatalf("pending %d, want 2", st.Pending())
	}

	c, err = st.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != 2 || st.Version() != 2 {
		t.Fatalf("commit version %d store %d, want 2", c.Version, st.Version())
	}
	if st.Pending() != 0 {
		t.Fatalf("pending after commit: %d", st.Pending())
	}
	if c.Entity == nil || len(c.Entity.Rows) != 1 || c.Entity.Rows[0] != 3 {
		t.Fatalf("entity delta %+v", c.Entity)
	}
	for j := range oldE {
		if c.Entity.Old[0][j] != oldE[j] || c.Entity.New[0][j] != newE2[j] {
			t.Fatalf("entity delta values wrong at col %d", j)
		}
	}
	if c.Attrs[0] == nil || len(c.Attrs[0].Rows) != 1 || c.Attrs[0].Rows[0] != 1 {
		t.Fatalf("attr delta %+v", c.Attrs[0])
	}

	// Second commit to the same attr row must report the epoch-2 value as Old.
	newA2 := randRow(rng, st.AttrCols(0))
	if err := st.UpsertAttr(0, 1, newA2); err != nil {
		t.Fatal(err)
	}
	c2, err := st.Commit()
	if err != nil {
		t.Fatal(err)
	}
	for j := range newA {
		if c2.Attrs[0].Old[0][j] != newA[j] {
			t.Fatalf("old value at col %d is %g, want previous-epoch %g", j, c2.Attrs[0].Old[0][j], newA[j])
		}
	}
	if c2.Entity != nil {
		t.Fatalf("entity delta on attr-only commit: %+v", c2.Entity)
	}
	if st.PatchedRows() != 2 {
		t.Fatalf("patched rows %d, want 2", st.PatchedRows())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		rng := rand.New(rand.NewSource(3))
		st := pkfkStore(t, rng, sparse)
		old := st.Pin()
		frozenS := old.S().Dense().Clone()
		frozenR := old.R(0).Dense().Clone()

		for k := 0; k < 3; k++ {
			for i := 0; i < st.EntityRows(); i += 2 {
				if err := st.UpsertEntity(i, randRow(rng, st.EntityCols())); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.UpsertAttr(0, k%st.AttrRows(0), randRow(rng, st.AttrCols(0))); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Commit(); err != nil {
				t.Fatal(err)
			}
		}

		// The pinned snapshot still reads epoch-1 values, element- and
		// operator-wise.
		if !equalDense(old.S().Dense(), frozenS) || !equalDense(old.R(0).Dense(), frozenR) {
			t.Fatalf("sparse=%v: pinned snapshot drifted under commits", sparse)
		}
		buf := make([]float64, st.EntityCols())
		for i := 0; i < st.EntityRows(); i++ {
			old.S().(*viewMat).ReadRow(i, buf)
			for j := range buf {
				if buf[j] != frozenS.At(i, j) {
					t.Fatalf("ReadRow(%d) drifted", i)
				}
			}
		}
		// A fresh pin sees the latest epoch.
		cur := st.Pin()
		if cur.Version() != 4 {
			t.Fatalf("fresh pin at version %d, want 4", cur.Version())
		}
		if equalDense(cur.S().Dense(), frozenS) {
			t.Fatalf("fresh pin still reads epoch-1 entity table")
		}
		cur.Release()
		old.Release()
	}
}

func equalDense(a, b *la.Dense) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i, x := range a.Data() {
		if x != b.Data()[i] {
			return false
		}
	}
	return true
}

// TestViewMatOperators pins the lazy patched-view operators against a
// manually patched dense matrix, dense and CSR bases both.
func TestViewMatOperators(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		rng := rand.New(rand.NewSource(4))
		st := pkfkStore(t, rng, sparse)
		nR, dR := st.AttrRows(0), st.AttrCols(0)
		p := st.Pin()
		want := p.R(0).Dense().Clone() // epoch-1 contents
		p.Release()

		// Patch a few rows, one of them to exact zeros (CSR sparsity path).
		for _, r := range []int{0, nR - 1} {
			v := randRow(rng, dR)
			if r == nR-1 {
				v = make([]float64, dR)
			}
			if err := st.UpsertAttr(0, r, v); err != nil {
				t.Fatal(err)
			}
			for j, x := range v {
				want.Set(r, j, x)
			}
		}
		if _, err := st.Commit(); err != nil {
			t.Fatal(err)
		}
		snap := st.Pin()
		defer snap.Release()
		v := snap.R(0)

		if !equalDense(v.Dense(), want) {
			t.Fatalf("sparse=%v: Dense() mismatch", sparse)
		}
		if v.NNZ() != la.CSRFromDense(want).NNZ() {
			t.Fatalf("sparse=%v: NNZ %d, want %d", sparse, v.NNZ(), la.CSRFromDense(want).NNZ())
		}
		for i := 0; i < nR; i++ {
			for j := 0; j < dR; j++ {
				if v.At(i, j) != want.At(i, j) {
					t.Fatalf("At(%d,%d) mismatch", i, j)
				}
			}
		}
		x := randDense(rng, dR, 2)
		if !equalDense(v.Mul(x), want.Mul(x)) {
			t.Fatalf("Mul mismatch")
		}
		y := randDense(rng, nR, 2)
		if !equalDense(v.TMul(y), want.TMul(y)) {
			t.Fatalf("TMul mismatch")
		}
		if !equalDense(v.CrossProd(), want.CrossProd()) {
			t.Fatalf("CrossProd mismatch")
		}
		if !equalDense(v.ColSums(), want.ColSums()) {
			t.Fatalf("ColSums mismatch")
		}
		if v.Sum() != want.Sum() {
			t.Fatalf("Sum mismatch")
		}
	}
}

func TestLiveEpochReclamation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := pkfkStore(t, rng, false)
	if st.LiveEpochs() != 1 {
		t.Fatalf("baseline live epochs %d, want 1", st.LiveEpochs())
	}

	// An unpinned superseded epoch is reclaimed immediately.
	if err := st.UpsertAttr(0, 0, randRow(rng, st.AttrCols(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.LiveEpochs() != 1 {
		t.Fatalf("unpinned supersede: live %d, want 1", st.LiveEpochs())
	}

	// Pinned epochs stay live until released, independent of order.
	s2 := st.Pin()
	if err := st.UpsertAttr(0, 1, randRow(rng, st.AttrCols(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	s3 := st.Pin()
	if err := st.UpsertAttr(0, 2, randRow(rng, st.AttrCols(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.LiveEpochs() != 3 {
		t.Fatalf("two pinned + current: live %d, want 3", st.LiveEpochs())
	}
	s3.Release()
	s3.Release() // idempotent
	if st.LiveEpochs() != 2 {
		t.Fatalf("after releasing s3: live %d, want 2", st.LiveEpochs())
	}
	s2.Release()
	if st.LiveEpochs() != 1 {
		t.Fatalf("accounting not at baseline: live %d, want 1", st.LiveEpochs())
	}

	// Pinning the current epoch does not leak when it is superseded later.
	cur := st.Pin()
	cur.Release()
	if st.LiveEpochs() != 1 {
		t.Fatalf("pin/release of current: live %d, want 1", st.LiveEpochs())
	}
}

// TestNormalizedMatrixSnapshot pins the O(1) snapshot-assembled
// normalized matrix against one rebuilt from frozen copies of the same
// epoch: identical elements, and identical factorized scoring.
func TestNormalizedMatrixSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	st := pkfkStore(t, rng, false)
	for k := 0; k < 2; k++ {
		if err := st.UpsertEntity(k, randRow(rng, st.EntityCols())); err != nil {
			t.Fatal(err)
		}
		if err := st.UpsertAttr(0, k, randRow(rng, st.AttrCols(0))); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	snap := st.Pin()
	defer snap.Release()
	nm, err := snap.NormalizedMatrix()
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := core.New(snap.S().Dense().Clone(), st.IS(), st.Ks(), []la.Mat{snap.R(0).Dense().Clone()})
	if err != nil {
		t.Fatal(err)
	}
	a, b := nm.Dense(), frozen.Dense()
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > diffTol {
				t.Fatalf("T(%d,%d): snapshot %g frozen %g", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}
