// Command morpheus-train fits a model over normalized CSV base tables
// without materializing the join.
//
// Usage:
//
//	morpheus-train -entity orders.csv -keys OrderID -target Late -features Qty,Weight \
//	    -attr "warehouses.csv:WarehouseID:WarehouseID:Capacity,Region@Region" \
//	    -model logreg -iters 200 -step 1e-4
//
// Each -attr flag wires one attribute table as
// "file:primaryKey:foreignKey:features[@categoricalCols]". Models: logreg
// (±1 target), linreg (numeric target), ridge (with -lambda). Training runs
// through the plan.Plan seam: the planner reads the join's structural facts
// (tuple/feature ratios, redundancy) and picks the factorized or
// materialized operand; the tool prints the explained Decision and the
// per-feature weights.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ml"
	"repro/internal/plan"
	"repro/internal/table"
)

type attrFlag struct{ specs []string }

func (a *attrFlag) String() string { return strings.Join(a.specs, ";") }
func (a *attrFlag) Set(v string) error {
	a.specs = append(a.specs, v)
	return nil
}

func main() {
	var (
		entityPath = flag.String("entity", "", "entity (fact) table CSV path")
		target     = flag.String("target", "", "target column in the entity table")
		features   = flag.String("features", "", "comma-separated entity feature columns")
		catCols    = flag.String("categorical", "", "comma-separated categorical entity columns")
		keyCols    = flag.String("keys", "", "comma-separated entity key columns (e.g. the primary key)")
		model      = flag.String("model", "logreg", "model: logreg | linreg | ridge")
		iters      = flag.Int("iters", 100, "gradient-descent iterations")
		step       = flag.Float64("step", 1e-4, "gradient-descent step size")
		lambda     = flag.Float64("lambda", 1.0, "ridge regularization strength")
		attrs      attrFlag
	)
	flag.Var(&attrs, "attr", "attribute table: file:pk:fk:features[@categoricalCols] (repeatable)")
	flag.Parse()

	if *entityPath == "" || *target == "" {
		fail("need -entity and -target (see -h)")
	}

	spec := table.JoinSpec{Target: *target}
	entityKinds := map[string]table.ColumnKind{}
	for _, c := range splitList(*catCols) {
		entityKinds[c] = table.Categorical
	}
	for _, c := range splitList(*keyCols) {
		entityKinds[c] = table.Key
	}
	var attrRefs []struct {
		path, pk, fk string
		feats, cats  []string
	}
	for _, raw := range attrs.specs {
		parts := strings.SplitN(raw, ":", 4)
		if len(parts) != 4 {
			fail("bad -attr %q: want file:pk:fk:features[@categoricalCols]", raw)
		}
		featsAndCats := strings.SplitN(parts[3], "@", 2)
		ref := struct {
			path, pk, fk string
			feats, cats  []string
		}{path: parts[0], pk: parts[1], fk: parts[2], feats: splitList(featsAndCats[0])}
		if len(featsAndCats) == 2 {
			ref.cats = splitList(featsAndCats[1])
		}
		entityKinds[ref.fk] = table.Key
		attrRefs = append(attrRefs, ref)
	}

	entity := readTable("Entity", *entityPath, entityKinds)
	spec.Entity = entity
	spec.EntityFeatures = splitList(*features)
	for _, ref := range attrRefs {
		kinds := map[string]table.ColumnKind{ref.pk: table.Key}
		for _, c := range ref.cats {
			kinds[c] = table.Categorical
		}
		spec.Attributes = append(spec.Attributes, table.AttributeRef{
			Table:      readTable(baseName(ref.path), ref.path, kinds),
			PrimaryKey: ref.pk,
			ForeignKey: ref.fk,
			Features:   ref.feats,
		})
	}

	nm, y, featNames, err := table.Build(spec)
	if err != nil {
		fail("building normalized matrix: %v", err)
	}
	st := nm.ComputeStats()
	fmt.Printf("normalized matrix: %d rows x %d features over %d attribute table(s)\n",
		nm.Rows(), nm.Cols(), nm.NumTables())
	fmt.Printf("tuple ratio %.2f, feature ratio %.2f, join redundancy %.2fx\n",
		st.TupleRatio, st.FeatureRatio, st.Redundancy)

	// Every training entry point runs through the planner seam: Plan reads
	// the structural facts above and picks the operand representation; the
	// model trains and predicts on whatever it chose.
	operand, dec := plan.Choose(plan.OpGLM, plan.Env{}, nm)
	fmt.Printf("plan: %s\n\n", dec)

	opt := ml.Options{Iters: *iters, StepSize: *step}
	var w interface {
		At(i, j int) float64
		Rows() int
	}
	switch *model {
	case "logreg":
		wd, err := ml.LogisticRegressionGD(operand, y, nil, opt)
		if err != nil {
			fail("training: %v", err)
		}
		pred := ml.ClassifyLogistic(operand, wd)
		acc, _ := ml.Accuracy(pred, y)
		fmt.Printf("logistic regression: training accuracy %.1f%%\n", 100*acc)
		w = wd
	case "linreg":
		wd, err := ml.LinearRegressionGD(operand, y, nil, opt)
		if err != nil {
			fail("training: %v", err)
		}
		rmse, _ := ml.RMSE(ml.PredictLinear(operand, wd), y)
		fmt.Printf("linear regression: training RMSE %.4f\n", rmse)
		w = wd
	case "ridge":
		wd, err := ml.RidgeRegression(operand, y, *lambda)
		if err != nil {
			fail("training: %v", err)
		}
		rmse, _ := ml.RMSE(ml.PredictLinear(operand, wd), y)
		fmt.Printf("ridge regression (lambda=%g): training RMSE %.4f\n", *lambda, rmse)
		w = wd
	default:
		fail("unknown -model %q", *model)
	}

	fmt.Println("\nweights:")
	for i, f := range featNames {
		fmt.Printf("  %-30s %+.6f\n", f, w.At(i, 0))
	}
}

func readTable(name, path string, kinds map[string]table.ColumnKind) *table.Table {
	f, err := os.Open(path)
	if err != nil {
		fail("opening %s: %v", path, err)
	}
	defer f.Close()
	t, err := table.ReadCSV(name, f, kinds)
	if err != nil {
		fail("parsing %s: %v", path, err)
	}
	return t
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func baseName(path string) string {
	b := path
	if i := strings.LastIndexByte(b, '/'); i >= 0 {
		b = b[i+1:]
	}
	return strings.TrimSuffix(b, ".csv")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "morpheus-train: "+format+"\n", args...)
	os.Exit(1)
}
