// Command morpheus-serve demonstrates the factorized scoring service: it
// trains a model over a generated normalized dataset (never materializing
// the join), builds a cached-partial Scorer, and then serves scoring
// requests read from stdin.
//
// Usage:
//
//	morpheus-serve -ns 20000 -ds 20 -nr 1000 -dr 80 -model logreg <ids.txt
//	morpheus-serve -mutable            # versioned store + online updates
//	morpheus-serve -replicas 4         # hash-sharded scoring fleet
//	morpheus-serve -replicas 4 -placement replicated
//
// Each input line is one request: a row id, or a comma-separated list of
// row ids (CSV) served as one batch. The special line "all" scores every
// row. Output is "id,score" per request row. With -compare, the tool first
// reports the cached-partial speedup over rerunning the factorized
// predictor.
//
// With -mutable the feature store is wrapped in a versioned epoch store
// (internal/epoch) served by an epoch-aware scorer, and three more
// request forms mutate it online:
//
//	set s 17 0.5,1.25,...     # stage new features for entity tuple 17
//	set r1 3 0.1,0.2,...      # stage new features for tuple 3 of R_1
//	commit                    # publish staged rows as one new epoch
//	epoch                     # print the epoch currently served
//
// Staged rows are invisible until commit; commit patches the scorer's
// cached partial products incrementally (subtract old contribution, add
// new) before returning, so the next score already reflects the new
// epoch. Scoring requests racing a commit observe exactly one epoch per
// batch — never a mix.
//
// -replicas N serves through an N-replica fleet behind the serve.Router:
// -placement sharded (default) hash-partitions row ids so the entity-side
// partial cache exists once across the fleet; -placement replicated gives
// every replica the full cache and rotates batches round-robin. With
// -mutable the fleet is replicated EpochScorers sharing one store — a
// commit publishes to every replica before returning. -queue bounds the
// admission queue; when it is full, requests are rejected with
// ErrOverloaded instead of queueing without bound.
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops admitting
// new requests, answers every request already accepted, flushes output,
// reports the admission stats, and exits 0 — no request is dropped
// mid-batch.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/epoch"
	"repro/internal/la"
	"repro/internal/ml"
	"repro/internal/serve"
)

// scorer is what request handling needs from either scorer flavor; both
// serve.Scorer and serve.EpochScorer satisfy it.
type scorer interface {
	serve.BatchScorer
	ScoreAll() []float64
}

func main() {
	var (
		ns      = flag.Int("ns", 20000, "entity tuples (fact-table rows)")
		ds      = flag.Int("ds", 20, "entity features")
		nr      = flag.Int("nr", 1000, "attribute-table tuples")
		dr      = flag.Int("dr", 80, "attribute features")
		tables  = flag.Int("tables", 1, "attribute tables (star schema when > 1)")
		model   = flag.String("model", "logreg", "model: logreg | linreg")
		iters   = flag.Int("iters", 20, "training iterations")
		step    = flag.Float64("step", 1e-6, "gradient-descent step size")
		seed    = flag.Int64("seed", 1, "data generator seed")
		batch   = flag.Int("batch", 256, "micro-batch size")
		delay   = flag.Duration("delay", 100*time.Microsecond, "micro-batch max delay")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		compare = flag.Bool("compare", false, "report cached vs naive scoring throughput before serving")
		mutable = flag.Bool("mutable", false, "serve from a versioned epoch store accepting set/commit/epoch requests")
		fleet   = flag.Int("replicas", 1, "serving-fleet width (1 = single scorer)")
		place   = flag.String("placement", "sharded", "fleet cache placement: sharded | replicated (-mutable fleets are always replicated)")
		queue   = flag.Int("queue", 0, "admission queue depth; full queue rejects with ErrOverloaded (0 = workers x batch)")
	)
	flag.Parse()

	head := serve.Logistic
	binarize := true
	if *model == "linreg" {
		head = serve.Linear
		binarize = false
	} else if *model != "logreg" {
		fail("unknown -model %q (want logreg or linreg)", *model)
	}

	nm, err := generate(*ns, *ds, *nr, *dr, *tables, *seed)
	if err != nil {
		fail("generating data: %v", err)
	}
	fmt.Fprintf(os.Stderr, "dataset: %d rows x %d features over %d attribute table(s)\n",
		nm.Rows(), nm.Cols(), nm.NumTables())
	y := datagen.Labels(nm, 0.1, binarize, *seed+1)
	start := time.Now()
	var w *la.Dense
	if head == serve.Logistic {
		w, err = ml.LogisticRegressionGD(nm, y, nil, ml.Options{Iters: *iters, StepSize: *step})
	} else {
		w, err = ml.LinearRegressionGD(nm, y, nil, ml.Options{Iters: *iters, StepSize: *step})
	}
	if err != nil {
		fail("training: %v", err)
	}
	fmt.Fprintf(os.Stderr, "trained %s factorized in %v\n", *model, time.Since(start).Round(time.Millisecond))

	var placement serve.Placement
	switch *place {
	case "sharded":
		placement = serve.HashSharded
	case "replicated":
		placement = serve.Replicated
	default:
		fail("unknown -placement %q (want sharded or replicated)", *place)
	}
	if *fleet < 1 {
		fail("-replicas must be >= 1, got %d", *fleet)
	}

	var sc scorer
	var st *epoch.Store
	if *mutable {
		st, err = epoch.NewStore(nm)
		if err != nil {
			fail("building epoch store: %v", err)
		}
		if *fleet > 1 {
			rt, err := serve.NewEpochFleet(st, w, head, *fleet)
			if err != nil {
				fail("building epoch fleet: %v", err)
			}
			fmt.Fprintf(os.Stderr, "mutable fleet: %d replicated replicas at epoch %d (set/commit/epoch requests enabled)\n",
				rt.NumReplicas(), st.Version())
			sc = rt
		} else {
			es, err := serve.NewEpochScorer(st, w, head)
			if err != nil {
				fail("building scorer: %v", err)
			}
			fmt.Fprintf(os.Stderr, "mutable store at epoch %d (set/commit/epoch requests enabled)\n", es.Version())
			sc = es
		}
	} else {
		if *compare {
			s, err := serve.NewScorer(nm, w, head)
			if err != nil {
				fail("building scorer: %v", err)
			}
			reportSpeedup(s, nm.Rows(), head, w)
		}
		if *fleet > 1 {
			rt, err := serve.NewScorerFleet(nm, w, head, *fleet, placement)
			if err != nil {
				fail("building fleet: %v", err)
			}
			fmt.Fprintf(os.Stderr, "serving fleet: %d %s replicas\n", rt.NumReplicas(), rt.Placement())
			sc = rt
		} else {
			s, err := serve.NewScorer(nm, w, head)
			if err != nil {
				fail("building scorer: %v", err)
			}
			sc = s
		}
	}
	b := serve.NewBatcher(sc, serve.BatchOptions{MaxBatch: *batch, MaxDelay: *delay, Workers: *workers, QueueDepth: *queue})
	defer b.Close()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	// Graceful shutdown: stop admitting, answer everything already
	// accepted, flush, report, exit — instead of dying mid-batch. outMu
	// orders the final flush against the request loop's writes.
	var outMu sync.Mutex
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "morpheus-serve: %v — draining in-flight batches\n", s)
		b.Close()
		outMu.Lock()
		out.Flush()
		bs := b.Stats()
		fmt.Fprintf(os.Stderr, "morpheus-serve: drained; accepted=%d rejected=%d batches=%d peak_queue=%d\n",
			bs.Accepted, bs.Rejected, bs.Batches, bs.PeakQueue)
		os.Exit(0)
	}()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		outMu.Lock()
		if st != nil && handleMutation(line, st, out) {
			out.Flush()
			outMu.Unlock()
			continue
		}
		handleRequest(line, sc, b, out)
		// Flush per request so interactive callers see their response
		// immediately rather than at buffer/EOF boundaries.
		out.Flush()
		outMu.Unlock()
	}
	if err := in.Err(); err != nil {
		fail("reading stdin: %v", err)
	}
}

// handleMutation serves the -mutable request forms; it reports whether
// the line was a mutation request (handled or rejected) as opposed to a
// scoring request.
func handleMutation(line string, st *epoch.Store, out *bufio.Writer) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "epoch":
		fmt.Fprintf(out, "epoch,%d\n", st.Version())
		return true
	case "commit":
		c, err := st.Commit()
		if err != nil {
			fmt.Fprintf(os.Stderr, "commit failed: %v\n", err)
			return true
		}
		fmt.Fprintf(out, "epoch,%d,rows,%d\n", c.Version, c.RowsChanged())
		return true
	case "set":
		if len(fields) != 4 {
			fmt.Fprintf(os.Stderr, "skipping %q: want 'set s|rN ROW v1,v2,...'\n", line)
			return true
		}
		row, err := strconv.Atoi(fields[2])
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %q: bad row %q\n", line, fields[2])
			return true
		}
		vals, err := parseVals(fields[3])
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %q: %v\n", line, err)
			return true
		}
		switch {
		case fields[1] == "s":
			err = st.UpsertEntity(row, vals)
		case strings.HasPrefix(fields[1], "r"):
			t, terr := strconv.Atoi(fields[1][1:])
			if terr != nil || t < 1 {
				fmt.Fprintf(os.Stderr, "skipping %q: bad table %q (want s or r1..r%d)\n", line, fields[1], st.NumTables())
				return true
			}
			err = st.UpsertAttr(t-1, row, vals)
		default:
			fmt.Fprintf(os.Stderr, "skipping %q: bad table %q (want s or r1..r%d)\n", line, fields[1], st.NumTables())
			return true
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %q: %v\n", line, err)
			return true
		}
		fmt.Fprintf(out, "staged,%d\n", st.Pending())
		return true
	}
	return false
}

func parseVals(csv string) ([]float64, error) {
	fields := strings.Split(csv, ",")
	vals := make([]float64, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", f)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("no values")
	}
	return vals, nil
}

// handleRequest serves one input line: "all", a single row id, or a
// comma-separated batch. Bad requests are reported to stderr and skipped.
func handleRequest(line string, sc scorer, b *serve.Batcher, out *bufio.Writer) {
	if line == "all" {
		for id, v := range sc.ScoreAll() {
			fmt.Fprintf(out, "%d,%g\n", id, v)
		}
		return
	}
	ids, err := parseIDs(line)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipping %q: %v\n", line, err)
		return
	}
	if len(ids) == 1 {
		v, err := b.Score(ids[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %d: %v\n", ids[0], err)
			return
		}
		fmt.Fprintf(out, "%d,%g\n", ids[0], v)
		return
	}
	vs, err := sc.ScoreBatch(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipping %q: %v\n", line, err)
		return
	}
	for i, id := range ids {
		fmt.Fprintf(out, "%d,%g\n", id, vs[i])
	}
}

func generate(ns, ds, nr, dr, tables int, seed int64) (*core.NormalizedMatrix, error) {
	if tables <= 1 {
		return datagen.PKFK(datagen.PKFKSpec{NS: ns, DS: ds, NR: nr, DR: dr, Seed: seed})
	}
	nrs := make([]int, tables)
	drs := make([]int, tables)
	for i := range nrs {
		nrs[i] = nr
		drs[i] = dr
	}
	return datagen.Star(datagen.StarSpec{NS: ns, DS: ds, NR: nrs, DR: drs, Seed: seed})
}

// reportSpeedup times scoring every row via the cached partials against
// rerunning the factorized predictor, mirroring BenchmarkServe*.
func reportSpeedup(sc *serve.Scorer, rows int, head serve.Head, w *la.Dense) {
	nm := sc.Matrix()
	const reps = 5
	naive := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if head == serve.Logistic {
			ml.PredictLogistic(nm, w)
		} else {
			ml.PredictLinear(nm, w)
		}
		if d := time.Since(t0); d < naive {
			naive = d
		}
	}
	cached := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		sc.ScoreAll()
		if d := time.Since(t0); d < cached {
			cached = d
		}
	}
	fmt.Fprintf(os.Stderr, "scoring %d rows: naive factorized %v, cached partials %v (%.1fx)\n",
		rows, naive, cached, float64(naive)/float64(cached))
}

func parseIDs(line string) ([]int, error) {
	fields := strings.Split(line, ",")
	ids := make([]int, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad row id %q", f)
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no row ids")
	}
	return ids, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "morpheus-serve: "+format+"\n", args...)
	os.Exit(1)
}
