// Command morpheus-serve demonstrates the factorized scoring service: it
// trains a model over a generated normalized dataset (never materializing
// the join), builds a cached-partial Scorer, and then serves scoring
// requests read from stdin.
//
// Usage:
//
//	morpheus-serve -ns 20000 -ds 20 -nr 1000 -dr 80 -model logreg <ids.txt
//
// Each input line is one request: a row id, or a comma-separated list of
// row ids (CSV) served as one batch. The special line "all" scores every
// row. Output is "id,score" per request row. With -compare, the tool first
// reports the cached-partial speedup over rerunning the factorized
// predictor.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/la"
	"repro/internal/ml"
	"repro/internal/serve"
)

func main() {
	var (
		ns      = flag.Int("ns", 20000, "entity tuples (fact-table rows)")
		ds      = flag.Int("ds", 20, "entity features")
		nr      = flag.Int("nr", 1000, "attribute-table tuples")
		dr      = flag.Int("dr", 80, "attribute features")
		tables  = flag.Int("tables", 1, "attribute tables (star schema when > 1)")
		model   = flag.String("model", "logreg", "model: logreg | linreg")
		iters   = flag.Int("iters", 20, "training iterations")
		step    = flag.Float64("step", 1e-6, "gradient-descent step size")
		seed    = flag.Int64("seed", 1, "data generator seed")
		batch   = flag.Int("batch", 256, "micro-batch size")
		delay   = flag.Duration("delay", 100*time.Microsecond, "micro-batch max delay")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		compare = flag.Bool("compare", false, "report cached vs naive scoring throughput before serving")
	)
	flag.Parse()

	head := serve.Logistic
	binarize := true
	if *model == "linreg" {
		head = serve.Linear
		binarize = false
	} else if *model != "logreg" {
		fail("unknown -model %q (want logreg or linreg)", *model)
	}

	nm, err := generate(*ns, *ds, *nr, *dr, *tables, *seed)
	if err != nil {
		fail("generating data: %v", err)
	}
	fmt.Fprintf(os.Stderr, "dataset: %d rows x %d features over %d attribute table(s)\n",
		nm.Rows(), nm.Cols(), nm.NumTables())
	y := datagen.Labels(nm, 0.1, binarize, *seed+1)
	start := time.Now()
	var w *la.Dense
	if head == serve.Logistic {
		w, err = ml.LogisticRegressionGD(nm, y, nil, ml.Options{Iters: *iters, StepSize: *step})
	} else {
		w, err = ml.LinearRegressionGD(nm, y, nil, ml.Options{Iters: *iters, StepSize: *step})
	}
	if err != nil {
		fail("training: %v", err)
	}
	fmt.Fprintf(os.Stderr, "trained %s factorized in %v\n", *model, time.Since(start).Round(time.Millisecond))

	sc, err := serve.NewScorer(nm, w, head)
	if err != nil {
		fail("building scorer: %v", err)
	}
	if *compare {
		reportSpeedup(sc, nm.Rows(), head, w)
	}
	b := serve.NewBatcher(sc, serve.BatchOptions{MaxBatch: *batch, MaxDelay: *delay, Workers: *workers})
	defer b.Close()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		handleRequest(line, sc, b, out)
		// Flush per request so interactive callers see their response
		// immediately rather than at buffer/EOF boundaries.
		out.Flush()
	}
	if err := in.Err(); err != nil {
		fail("reading stdin: %v", err)
	}
}

// handleRequest serves one input line: "all", a single row id, or a
// comma-separated batch. Bad requests are reported to stderr and skipped.
func handleRequest(line string, sc *serve.Scorer, b *serve.Batcher, out *bufio.Writer) {
	if line == "all" {
		for id, v := range sc.ScoreAll() {
			fmt.Fprintf(out, "%d,%g\n", id, v)
		}
		return
	}
	ids, err := parseIDs(line)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipping %q: %v\n", line, err)
		return
	}
	if len(ids) == 1 {
		v, err := b.Score(ids[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %d: %v\n", ids[0], err)
			return
		}
		fmt.Fprintf(out, "%d,%g\n", ids[0], v)
		return
	}
	vs, err := sc.ScoreBatch(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipping %q: %v\n", line, err)
		return
	}
	for i, id := range ids {
		fmt.Fprintf(out, "%d,%g\n", id, vs[i])
	}
}

func generate(ns, ds, nr, dr, tables int, seed int64) (*core.NormalizedMatrix, error) {
	if tables <= 1 {
		return datagen.PKFK(datagen.PKFKSpec{NS: ns, DS: ds, NR: nr, DR: dr, Seed: seed})
	}
	nrs := make([]int, tables)
	drs := make([]int, tables)
	for i := range nrs {
		nrs[i] = nr
		drs[i] = dr
	}
	return datagen.Star(datagen.StarSpec{NS: ns, DS: ds, NR: nrs, DR: drs, Seed: seed})
}

// reportSpeedup times scoring every row via the cached partials against
// rerunning the factorized predictor, mirroring BenchmarkServe*.
func reportSpeedup(sc *serve.Scorer, rows int, head serve.Head, w *la.Dense) {
	nm := sc.Matrix()
	const reps = 5
	naive := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		if head == serve.Logistic {
			ml.PredictLogistic(nm, w)
		} else {
			ml.PredictLinear(nm, w)
		}
		if d := time.Since(t0); d < naive {
			naive = d
		}
	}
	cached := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		sc.ScoreAll()
		if d := time.Since(t0); d < cached {
			cached = d
		}
	}
	fmt.Fprintf(os.Stderr, "scoring %d rows: naive factorized %v, cached partials %v (%.1fx)\n",
		rows, naive, cached, float64(naive)/float64(cached))
}

func parseIDs(line string) ([]int, error) {
	fields := strings.Split(line, ",")
	ids := make([]int, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad row id %q", f)
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no row ids")
	}
	return ids, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "morpheus-serve: "+format+"\n", args...)
	os.Exit(1)
}
