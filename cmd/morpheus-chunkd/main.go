// Command morpheus-chunkd serves one chunk-store shard directory over HTTP
// — and executes ops on the chunks it holds — so a sharded out-of-core
// store on another machine can place spill chunks here
// (chunk.NewRemoteBackend / morpheus-bench -remote-shards) and, with
// pushdown, map them in place instead of streaming them back.
//
// Usage:
//
//	morpheus-chunkd -dir /fast/disk/spill
//	morpheus-chunkd -dir /spill -addr :9431 -max-chunk-mb 1024
//
// Wire protocol (see chunk.ChunkServer): PUT/GET/HEAD/DELETE /chunks/{key}
// for chunk blobs, GET /chunks for the stored-key listing, DELETE /chunks
// to reap every chunk plus interrupted-spill temp debris (the remote
// analogue of startup orphan reaping — the store issues it when it adopts
// the shard). POST /exec runs a registered per-chunk op (crossprod,
// colsums, sum, kmeans-assign) over listed local chunks and streams back
// the encoded partials in request order, so only partials — not chunks —
// cross the wire; the driver remains the reducer and results are
// bit-identical with an all-local pass. An /exec request may name the
// codec its stored blobs are framed with (a store whose shards sit behind
// the compressing wrapper ships them compressed); this worker decodes them
// shard-side before the chunk decode, and answers 400 — a per-request
// error, not "no /exec" — for a codec it does not know.
// Uploads above -max-chunk-mb are
// rejected; writes are atomic (temp file + rename), so a client or server
// crash never leaves a truncated chunk readable.
//
// Run one chunkd shard per store: adopting a shard reaps whatever a
// previous (crashed) run left in it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/chunk"
)

func main() {
	var (
		addr  = flag.String("addr", ":9431", "listen address")
		dir   = flag.String("dir", "", "shard directory to serve (required)")
		maxMB = flag.Int64("max-chunk-mb", chunk.DefaultMaxChunkBytes>>20, "largest accepted chunk upload in MiB")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "morpheus-chunkd: -dir is required")
		os.Exit(2)
	}
	srv, err := chunk.NewChunkServer(*dir, *maxMB<<20)
	if err != nil {
		log.Fatalf("morpheus-chunkd: %v", err)
	}
	log.Printf("morpheus-chunkd: serving shard %s on %s (max chunk %d MiB; exec codecs: %s)", *dir, *addr, *maxMB, strings.Join(chunk.Codecs(), ", "))
	log.Fatal(http.ListenAndServe(*addr, srv))
}
