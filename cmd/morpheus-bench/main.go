// Command morpheus-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	morpheus-bench -exp fig3            # one experiment
//	morpheus-bench -exp all             # everything (slow)
//	morpheus-bench -list                # show experiment IDs
//	morpheus-bench -exp fig5 -scale 2   # grow workloads toward paper scale
//	morpheus-bench -exp table9 -tmpdir /fast/disk
//	morpheus-bench -chunked             # out-of-core suite
//	morpheus-bench -chunked -workers 4  # ... with a fixed worker count
//	morpheus-bench -chunked -mem 64     # ... under a 64 MB chunk budget
//	morpheus-bench -chunked -shards /disk1/spill,/disk2/spill
//	morpheus-bench -chunked -remote-shards http://node1:9431,http://node2:9431
//	morpheus-bench -chunked -remote-shards http://node1:9431 -pushdown
//	morpheus-bench -exp chunkpar -inproc-chunkd 2 -pushdown -json
//	morpheus-bench -exp table9 -plan -json > bench-plan.json
//	morpheus-bench -exp chunkpar -codec shuffle-flate -zonemap -json
//	morpheus-bench -exp fig3 -json > bench.json
//
// Each experiment prints a text table with the materialized (M) and
// factorized (F) runtimes and the speed-up, mirroring the series in the
// corresponding paper table/figure. See EXPERIMENTS.md for the mapping and
// the paper-vs-measured record.
//
// -chunked runs the out-of-core suite: the serial-vs-parallel engine
// comparison (chunkpar), the star-schema/sparse/k-means interface suite
// (chunkstar), the sharded-vs-single-directory spill comparison
// (chunkshard), and the §5.2.4 Tables 9 and 10, all under the parallel
// prefetching chunk pipeline. -mem bounds the decoded-chunk memory; chunk
// heights are derived from it via chunk.AutoRows instead of being
// hard-coded. -shards spreads every chunk store across the listed
// directories (point them at different disks) with size-aware placement
// and per-shard write-behind queues. -remote-shards adds morpheus-chunkd
// chunk servers as shards next to (or instead of) the local directories,
// so spills stream to other nodes.
//
// -pushdown ships op-based per-chunk maps (crossprod, colsums, sum, the
// k-means assignment pass) to the remote shards' /exec endpoints instead
// of streaming their chunks back; every experiment still asserts the
// results identical to the all-local run. -inproc-chunkd N starts N
// in-process chunkd workers on loopback and adds them to -remote-shards —
// the single-binary smoke configuration CI runs.
//
// -codec wraps every spill backend with the named chunk codec (see
// chunk.Codecs; currently shuffle-flate, a byte-shuffled DEFLATE), so
// chunks are compressed at rest and on the wire — including through
// morpheus-chunkd, whose /exec decodes them shard-side. -zonemap wraps
// every spill backend with the zone-map annotator: per-chunk min/max/nnz
// sidecars written at spill time let the streaming reductions skip chunks
// proven all-zero without reading them. Both wrappers sit behind the
// chunk.Backend seam, results stay bit-identical, and the -json output
// records bytes_read, bytes_on_wire, chunks_skipped, and codec per result.
//
// -plan additionally routes every training workload through the
// plan.Plan(op, operands, env) seam: each run records an explained
// Decision (strategy, the rule that fired, the structural facts it read,
// and the planning time in microseconds) and is verified bit-identical to
// the explicit execution it selected — a divergence fails the run. With
// -json the decisions appear under each result's "decisions" field, which
// is how CI's plan-smoke step archives the planner trace.
//
// -exp serve-mutate runs the HTAP serving workload: an epoch-aware scorer
// over a versioned store, measured at steady state and then under a
// commit storm — per-commit publish latency (including the incremental
// partial-product patch), epochs/sec, and the scoring throughput retained
// while mutating. -mutate sets the rows upserted per commit. The run
// asserts the patched scorer identical (≤1e-12) to a from-scratch rebuild
// at the final epoch and fails otherwise, so CI's epoch smoke step gates
// on the differential, like the plan smoke does.
//
// -exp serve-slo runs the serving-fleet latency harness: single,
// replicated, and hash-sharded fleets (width -replicas) behind the
// Batcher's bounded admission queue, driven closed-loop (-slo-conc
// workers, each window -slo-dur long) and open-loop (fixed arrival rate
// -slo-rate, default derived from the measured closed-loop throughput),
// reporting p50/p99/p999 latency, throughput, and rejection counts; an
// overload segment with a deliberately slow backend asserts excess
// requests fail fast with ErrOverloaded, and an epoch-fleet commit storm
// re-checks the routed ≡ single differential (≤1e-12) at the final
// epoch. With -json the percentiles and rejections land in the
// p50_us/p99_us/p999_us/rejected fields CI archives as bench-serve.json.
//
// -json replaces the text tables with one JSON array of results on stdout
// (the schema is experiments.Result: id/title/header/rows/notes, plus
// decisions under -plan), the machine-readable record CI archives per run
// so the performance trajectory accumulates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/chunk"
	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "morpheus-bench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "", "experiment ID (or 'all')")
		scale    = flag.Float64("scale", 1, "workload scale factor (1 = laptop defaults)")
		seed     = flag.Int64("seed", 1, "data generation seed")
		tmpdir   = flag.String("tmpdir", "", "directory for out-of-core chunk stores (default: system temp)")
		shards   = flag.String("shards", "", "comma-separated shard directories for the out-of-core chunk stores (different disks); overrides -tmpdir")
		remote   = flag.String("remote-shards", "", "comma-separated morpheus-chunkd base URLs to shard the out-of-core chunk stores across, alongside -shards")
		inproc   = flag.Int("inproc-chunkd", 0, "start N in-process chunkd workers on loopback and add them to -remote-shards (pushdown smoke testing)")
		pushdown = flag.Bool("pushdown", false, "run op-based per-chunk maps on the remote shards holding the chunks (/exec) instead of streaming chunks back")
		workers  = flag.Int("workers", 0, "out-of-core chunk workers (0 = GOMAXPROCS)")
		mem      = flag.Int("mem", 0, "out-of-core decoded-chunk memory budget in MB; chunk heights are autotuned from it (0 = 256)")
		chunked  = flag.Bool("chunked", false, "run the out-of-core suite (chunkpar, chunkstar, table9, table10)")
		planOn   = flag.Bool("plan", false, "route training workloads through the planner seam, record explained decisions, and verify each against its explicit twin")
		codec    = flag.String("codec", "", "compress spill chunks with this chunk codec (see -list-codecs); empty = raw chunks")
		zonemap  = flag.Bool("zonemap", false, "record per-chunk zone-map sidecars at spill time so reductions skip proven all-zero chunks")
		mutate   = flag.Int("mutate", 0, "rows upserted per epoch commit in the serve-mutate experiment (0 = scale-derived default)")
		replicas = flag.Int("replicas", 0, "serving-fleet width for the serve-slo experiment (0 = 4)")
		sloRate  = flag.Float64("slo-rate", 0, "open-loop arrival rate in requests/sec for serve-slo (0 = derived from measured closed-loop throughput)")
		sloConc  = flag.Int("slo-conc", 0, "closed-loop concurrency for serve-slo (0 = 8)")
		sloDur   = flag.Duration("slo-dur", 0, "measurement window per serve-slo segment (0 = 250ms)")
		listCdc  = flag.Bool("list-codecs", false, "list registered chunk codec names and exit")
		asJSON   = flag.Bool("json", false, "emit results as one JSON array on stdout instead of text tables")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	if *listCdc {
		fmt.Println(strings.Join(chunk.Codecs(), "\n"))
		return nil
	}
	if *codec != "" {
		if _, err := chunk.CodecByName(*codec); err != nil {
			return err
		}
	}
	if *exp == "" && !*chunked {
		fmt.Fprintln(os.Stderr, "morpheus-bench: -exp is required (try -list or -chunked)")
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, TmpDir: *tmpdir, Workers: *workers, MemBudgetMB: *mem, Pushdown: *pushdown, Plan: *planOn, Codec: *codec, ZoneMap: *zonemap, MutateRows: *mutate, Replicas: *replicas, SLORate: *sloRate, SLOConc: *sloConc, SLODur: *sloDur}
	if *shards != "" {
		for _, d := range strings.Split(*shards, ",") {
			if d = strings.TrimSpace(d); d != "" {
				cfg.ShardDirs = append(cfg.ShardDirs, d)
			}
		}
	}
	if *remote != "" {
		for _, u := range strings.Split(*remote, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.RemoteShards = append(cfg.RemoteShards, u)
			}
		}
	}
	if *inproc > 0 {
		urls, stop, err := startInprocChunkd(*inproc)
		if err != nil {
			return err
		}
		defer stop()
		cfg.RemoteShards = append(cfg.RemoteShards, urls...)
	}
	var ids []string
	switch {
	case *chunked:
		ids = []string{"chunkpar", "chunkstar", "chunkshard", "table9", "table10"}
		if *exp != "" {
			fmt.Fprintln(os.Stderr, "morpheus-bench: -chunked ignores -exp")
		}
	case *exp == "all":
		ids = experiments.IDs()
	default:
		ids = []string{*exp}
	}
	seen := map[string]bool{}
	var results []experiments.Result
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %v", id, err)
		}
		if seen[res.ID] { // fig6/fig7 and fig11/fig12 share runners
			continue
		}
		seen[res.ID] = true
		if *asJSON {
			results = append(results, res)
			continue
		}
		fmt.Println(res.Format())
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
	}
	return nil
}

// startInprocChunkd starts n chunkd workers on loopback listeners, each
// serving its own temp shard directory, and returns their base URLs plus a
// cleanup that stops the servers and removes the directories.
func startInprocChunkd(n int) (urls []string, stop func(), err error) {
	var servers []*http.Server
	var dirs []string
	stop = func() {
		for _, srv := range servers {
			srv.Close()
		}
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "morpheus-chunkd-*")
		if err != nil {
			stop()
			return nil, nil, err
		}
		dirs = append(dirs, dir)
		cs, err := chunk.NewChunkServer(dir, 0)
		if err != nil {
			stop()
			return nil, nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv := &http.Server{Handler: cs}
		servers = append(servers, srv)
		go srv.Serve(ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	return urls, stop, nil
}
